"""Fault injection: scripted plans and randomized churn."""

from repro.net.addressing import IPAddress
from repro.net.fabric import Fabric
from repro.net.nic import NicState
from repro.node.faults import FaultInjector, FaultPlan
from repro.node.host import Host
from repro.node.osmodel import OSParams
from repro.sim.engine import Simulator


def build(n=3):
    sim = Simulator(seed=0)
    fab = Fabric(sim)
    hosts = {}
    for i in range(n):
        h = Host(sim, f"n{i}", os_params=OSParams.ideal())
        h.add_adapter(IPAddress(f"10.0.0.{i + 1}"), fab, "sw", 1)
        hosts[h.name] = h
    return sim, fab, hosts


def test_plan_crash_and_restart():
    sim, fab, hosts = build()
    plan = FaultPlan().crash_node(5.0, "n1").restart_node(10.0, "n1")
    plan.arm(sim, fab, hosts)
    sim.run(until=6.0)
    assert hosts["n1"].crashed
    sim.run(until=11.0)
    assert not hosts["n1"].crashed


def test_plan_adapter_fail_modes():
    sim, fab, hosts = build()
    plan = (
        FaultPlan()
        .fail_adapter(1.0, "10.0.0.1", NicState.FAIL_RECV)
        .repair_adapter(2.0, "10.0.0.1")
    )
    plan.arm(sim, fab, hosts)
    sim.run(until=1.5)
    assert fab.nics[IPAddress("10.0.0.1")].state is NicState.FAIL_RECV
    sim.run(until=2.5)
    assert fab.nics[IPAddress("10.0.0.1")].state is NicState.OK


def test_plan_switch_and_partition():
    sim, fab, hosts = build()
    plan = (
        FaultPlan()
        .fail_switch(1.0, "sw")
        .repair_switch(2.0, "sw")
        .partition(3.0, 1, [["10.0.0.1"]])
        .heal(4.0, 1)
    )
    plan.arm(sim, fab, hosts)
    sim.run(until=1.5)
    assert fab.switches["sw"].failed
    sim.run(until=2.5)
    assert not fab.switches["sw"].failed
    sim.run(until=3.5)
    assert fab.segments[1].partitioned
    sim.run(until=4.5)
    assert not fab.segments[1].partitioned


def test_plan_builder_chains():
    plan = FaultPlan().crash_node(1, "a").restart_node(2, "a")
    assert len(plan.actions) == 2


def test_injector_crashes_and_repairs():
    sim, fab, hosts = build(10)
    inj = FaultInjector(sim, hosts, mtbf=20.0, mttr=5.0)
    inj.start()
    sim.run(until=200.0)
    assert inj.crashes > 0
    assert inj.repairs > 0
    # repairs trail crashes by at most the currently-down population
    assert inj.crashes - inj.repairs <= len(hosts)


def test_injector_stop_halts_faults():
    sim, fab, hosts = build(10)
    inj = FaultInjector(sim, hosts, mtbf=10.0, mttr=2.0)
    inj.start()
    sim.run(until=50.0)
    count = inj.crashes
    inj.stop()
    sim.run(until=500.0)
    assert inj.crashes == count


def test_injector_deterministic_per_seed():
    def run():
        sim, fab, hosts = build(8)
        inj = FaultInjector(sim, hosts, mtbf=15.0, mttr=3.0)
        inj.start()
        sim.run(until=100.0)
        return inj.crashes, inj.repairs

    assert run() == run()


def test_injector_validates_params():
    sim, fab, hosts = build()
    import pytest

    with pytest.raises(ValueError):
        FaultInjector(sim, hosts, mtbf=0)
    with pytest.raises(ValueError):
        FaultInjector(sim, hosts, mttr=-1)


def test_plan_router_actions():
    sim, fab, hosts = build()
    fab.add_router("core", ["sw", "sw2"])
    plan = FaultPlan().fail_router(1.0, "core").repair_router(2.0, "core")
    plan.arm(sim, fab, hosts)
    sim.run(until=1.5)
    assert fab.routers["core"].failed
    sim.run(until=2.5)
    assert not fab.routers["core"].failed
