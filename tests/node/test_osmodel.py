"""OS model: delay distributions, serialized handling, determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.node.osmodel import OSModel, OSParams
from repro.sim.engine import Simulator


def test_ideal_params_are_all_zero():
    sim = Simulator()
    os = OSModel(sim, "h", OSParams.ideal())
    assert os.boot_delay() == 0.0
    assert os.beacon_stagger() == 0.0
    assert os.phase_lag() == 0.0


def test_draws_within_configured_ranges():
    sim = Simulator()
    os = OSModel(sim, "h", OSParams())
    for _ in range(100):
        assert 1.0 <= os.beacon_stagger() <= 2.0
        assert 0.0 <= os.boot_delay() <= 0.5
        assert 0.95 <= os.phase_lag() <= 1.35


def test_per_host_streams_are_independent():
    sim = Simulator(seed=1)
    a = OSModel(sim, "a", OSParams())
    b = OSModel(sim, "b", OSParams())
    assert [a.beacon_stagger() for _ in range(5)] != [b.beacon_stagger() for _ in range(5)]


def test_same_seed_same_host_reproducible():
    xs = [OSModel(Simulator(seed=9), "h", OSParams()).beacon_stagger() for _ in range(2)]
    assert xs[0] == xs[1]


def test_handle_runs_callback_with_delay():
    sim = Simulator()
    os = OSModel(sim, "h", OSParams(proc_delay=(0.01, 0.01)))
    done = []
    os.handle(lambda: done.append(sim.now))
    sim.run()
    assert done == [0.01]


def test_handle_serializes_under_load():
    """Concurrent handling queues behind in-flight work (single-threaded
    daemon): N events each costing d take N*d, not d."""
    sim = Simulator()
    os = OSModel(sim, "h", OSParams(proc_delay=(0.01, 0.01)))
    done = []
    for _ in range(5):
        os.handle(lambda: done.append(sim.now))
    sim.run()
    assert len(done) == 5
    assert done[-1] >= 0.05 - 1e-9
    assert done == sorted(done)


def test_handle_ideal_is_immediate_but_ordered():
    sim = Simulator()
    os = OSModel(sim, "h", OSParams.ideal())
    done = []
    os.handle(done.append, 1)
    os.handle(done.append, 2)
    sim.run()
    assert done == [1, 2]


def test_after_phase_lag_schedules():
    sim = Simulator()
    os = OSModel(sim, "h", OSParams(phase_lag=(0.5, 0.5)))
    done = []
    os.after_phase_lag(lambda: done.append(sim.now))
    sim.run()
    assert done == [0.5]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=20))
def test_property_serialized_total_time(n):
    sim = Simulator()
    os = OSModel(sim, "h", OSParams(proc_delay=(0.002, 0.002)))
    done = []
    for _ in range(n):
        os.handle(lambda: done.append(sim.now))
    sim.run()
    assert abs(done[-1] - n * 0.002) < 1e-9
