"""Adapter-protocol edge cases: dropped members, stale epochs, races."""

from repro.gulfstream.adapter_proto import AdapterState
from repro.gulfstream.messages import (
    Commit,
    GroupHint,
    Prepare,
    PrepareAck,
    Suspect,
)
from repro.net.addressing import IPAddress
from repro.net.packet import Frame

from tests.conftest import FAST, make_flat_farm, run_stable

HB = FAST.derive(hb_interval=0.5, probe_timeout=0.5, orphan_timeout=2.5,
                 takeover_stagger=0.5, suspect_retry_interval=0.5)


def vlan_protos(farm, vlan):
    return {
        str(p.ip): p
        for d in farm.daemons.values()
        for p in d.protocols.values()
        if p.nic.port is not None and p.nic.port.vlan == vlan
    }


def leader_of(farm, vlan):
    return next(p for p in vlan_protos(farm, vlan).values()
                if p.state is AdapterState.LEADER)


def deliver(proto, payload, src="10.9.9.9"):
    """Push a crafted frame straight into the protocol's dispatcher."""
    proto.on_frame(Frame(IPAddress(src), proto.ip, payload))


def test_group_hint_triggers_rejoin_of_dropped_member():
    """A member dropped by a lost PrepareAck learns it via GroupHint and
    self-promotes to rejoin (the paper's footnote-1 'confused membership'
    case, made deterministic)."""
    farm = make_flat_farm(5, seed=1, params=HB)
    run_stable(farm)
    leader = leader_of(farm, 2)
    victim = next(p for p in vlan_protos(farm, 2).values()
                  if p.state is AdapterState.MEMBER)
    hint = GroupHint(sender=leader.ip, leader=leader.ip, epoch=leader.epoch,
                     member=False)
    t0 = farm.sim.now
    deliver(victim, hint, src=str(leader.ip))
    # immediately becomes its own (singleton) leader and starts beaconing
    assert victim.state is AdapterState.LEADER
    assert victim.view.size == 1
    farm.sim.run(until=t0 + 30)
    # ... and is merged straight back into the big group
    assert victim.view.size == 5


def test_group_hint_from_non_leader_ignored():
    farm = make_flat_farm(4, seed=2, params=HB)
    run_stable(farm)
    victim = next(p for p in vlan_protos(farm, 2).values()
                  if p.state is AdapterState.MEMBER)
    bogus = GroupHint(sender=IPAddress("10.9.9.9"), leader=IPAddress("10.9.9.9"),
                      epoch=99, member=False)
    deliver(victim, bogus)
    assert victim.state is AdapterState.MEMBER  # unmoved


def test_stale_commit_rejected():
    farm = make_flat_farm(4, seed=3, params=HB)
    run_stable(farm)
    member = next(p for p in vlan_protos(farm, 2).values()
                  if p.state is AdapterState.MEMBER)
    view_before = member.view
    stale = Commit(coordinator=view_before.leader_ip, epoch=view_before.epoch - 1,
                   members=view_before.members[:2], reason="death",
                   group_key=view_before.group_key)
    deliver(member, stale)
    assert member.view is view_before


def test_commit_not_including_me_ignored():
    farm = make_flat_farm(4, seed=4, params=HB)
    run_stable(farm)
    member = next(p for p in vlan_protos(farm, 2).values()
                  if p.state is AdapterState.MEMBER)
    others = tuple(m for m in member.view.members if m.ip != member.ip)
    foreign = Commit(coordinator=others[0].ip, epoch=member.epoch + 5,
                     members=others, reason="death", group_key="x@1")
    deliver(member, foreign)
    assert member.view.contains(member.ip)
    assert member.epoch < member.view.epoch + 5


def test_prepare_with_lower_epoch_nacked_with_hint():
    farm = make_flat_farm(4, seed=5, params=HB)
    run_stable(farm)
    member = next(p for p in vlan_protos(farm, 2).values()
                  if p.state is AdapterState.MEMBER)
    sent = []
    member.send = lambda dst, payload, size=None: sent.append((dst, payload)) or True
    low = Prepare(coordinator=IPAddress("10.9.9.9"), epoch=0,
                  members=member.view.members, reason="merge", group_key="x@1")
    deliver(member, low)
    acks = [p for (_, p) in sent if isinstance(p, PrepareAck)]
    assert len(acks) == 1
    assert not acks[0].ok
    assert acks[0].current_epoch >= member.epoch


def test_leader_resends_commit_to_stale_reporter():
    """A Suspect carrying an old epoch reveals the reporter missed a
    commit; the leader re-syncs it."""
    farm = make_flat_farm(4, seed=6, params=HB)
    run_stable(farm)
    leader = leader_of(farm, 2)
    reporter = next(m.ip for m in leader.view.members if m.ip != leader.ip)
    suspect_target = next(m.ip for m in leader.view.members
                          if m.ip not in (leader.ip, reporter))
    sent = []
    real_send = leader.send
    leader.send = lambda dst, payload, size=None: sent.append((dst, payload)) or real_send(dst, payload, size=size)
    old = Suspect(reporter=reporter, suspect=suspect_target,
                  epoch=leader.epoch - 1, seq=1)
    deliver(leader, old, src=str(reporter))
    commits = [p for (dst, p) in sent if isinstance(p, Commit) and dst == reporter]
    assert len(commits) == 1
    assert commits[0].epoch == leader.epoch


def test_suspect_about_non_member_answered_with_hint():
    farm = make_flat_farm(4, seed=7, params=HB)
    run_stable(farm)
    leader = leader_of(farm, 2)
    sent = []
    real_send = leader.send
    leader.send = lambda dst, payload, size=None: sent.append((dst, payload)) or real_send(dst, payload, size=size)
    stranger = IPAddress("10.9.9.9")
    msg = Suspect(reporter=stranger, suspect=leader.view.members[1].ip,
                  epoch=leader.epoch, seq=1)
    deliver(leader, msg, src=str(stranger))
    hints = [p for (_, p) in sent if isinstance(p, GroupHint)]
    assert len(hints) == 1 and hints[0].member is False


def test_suspicion_of_leader_by_itself_ignored():
    farm = make_flat_farm(4, seed=8, params=HB)
    run_stable(farm)
    leader = leader_of(farm, 2)
    msg = Suspect(reporter=leader.view.members[1].ip, suspect=leader.ip,
                  epoch=leader.epoch, seq=1)
    deliver(leader, msg, src=str(leader.view.members[1].ip))
    farm.sim.run(until=farm.sim.now + 10)
    # leader doesn't declare itself dead
    assert leader.state is AdapterState.LEADER
    assert leader.view.contains(leader.ip)


def test_stopped_protocol_ignores_frames():
    farm = make_flat_farm(3, seed=9, params=HB)
    run_stable(farm)
    proto = next(iter(vlan_protos(farm, 2).values()))
    proto.stop()
    view = proto.view
    deliver(proto, Commit(coordinator=IPAddress("10.9.9.9"), epoch=99,
                          members=(proto.my_info(),), reason="x", group_key="y@9"))
    assert proto.view is view
    assert proto.state is AdapterState.STOPPED


def test_wait_form_falls_back_to_rebeacon():
    """If the expected coordinator never commits us, re-beacon (§2.1
    implementation detail: form_timeout)."""
    farm = make_flat_farm(3, seed=10, params=HB)
    # crash the node that would win leadership of vlan 2 BEFORE its
    # formation 2PC can run, mid-beacon-phase
    # highest ip on vlan 2 belongs to node-2
    farm.sim.run(until=0.8)
    farm.hosts["node-2"].crash()
    farm.sim.run(until=40)
    survivors = [p for p in vlan_protos(farm, 2).values()
                 if not p.host.crashed]
    views = {str(p.view) for p in survivors}
    assert len(views) == 1
    assert survivors[0].view.size == 2
    assert farm.sim.trace.count("gs.form.timeout") >= 1


def test_merge_request_rate_limited():
    farm = make_flat_farm(3, seed=11, params=HB)
    run_stable(farm)
    leader = leader_of(farm, 2)
    from repro.gulfstream.messages import Beacon, MemberInfo

    foreign = Beacon(
        info=MemberInfo(ip=IPAddress("10.2.0.1"), node="ghost", adapter_index=1),
        is_leader=True, epoch=1,
    )  # lower IP than the leader, so *we* initiate the merge
    before = farm.sim.trace.count("gs.merge.request")
    deliver(leader, foreign)
    deliver(leader, foreign)
    deliver(leader, foreign)
    assert farm.sim.trace.count("gs.merge.request") == before + 1
