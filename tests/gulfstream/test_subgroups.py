"""Subgroup heartbeating (§4.2): partitioning properties and behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gulfstream.amg import AMGView
from repro.gulfstream.messages import MemberInfo
from repro.gulfstream.subgroups import partition_subgroups
from repro.net.addressing import IPAddress

from tests.conftest import FAST, make_flat_farm, run_stable


def mi(v):
    return MemberInfo(ip=IPAddress(v), node="n", adapter_index=0)


def view_of(n):
    return AMGView.build([mi(i + 1) for i in range(n)], epoch=1)


def test_partition_covers_all_members_once():
    chunks = partition_subgroups(view_of(10), 3)
    flat = [ip for c in chunks for ip in c]
    assert len(flat) == 10 and len(set(flat)) == 10


def test_no_trailing_singleton():
    chunks = partition_subgroups(view_of(7), 3)  # 3+3+1 -> 3+4
    assert [len(c) for c in chunks] == [3, 4]


def test_small_group_single_chunk():
    assert len(partition_subgroups(view_of(3), 8)) == 1


def test_size_below_two_rejected():
    with pytest.raises(ValueError):
        partition_subgroups(view_of(4), 1)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=200), st.integers(min_value=2, max_value=20))
def test_property_partition_invariants(n, size):
    chunks = partition_subgroups(view_of(n), size)
    flat = [ip for c in chunks for ip in c]
    # exact cover
    assert sorted(int(ip) for ip in flat) == sorted(range(1, n + 1))
    # no chunk exceeds size+1 (singleton fold-in) and none is a singleton
    # unless the whole group is one
    assert all(len(c) <= size + 1 for c in chunks)
    if n >= 2:
        assert all(len(c) >= 2 for c in chunks)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=100), st.integers(min_value=2, max_value=10))
def test_property_partition_deterministic(n, size):
    v = view_of(n)
    assert partition_subgroups(v, size) == partition_subgroups(v, size)


def integration_farm(n, seed, subgroup_size):
    params = FAST.derive(
        subgroup_size=subgroup_size,
        subgroup_poll_interval=3.0,
        hb_interval=0.5,
        probe_timeout=0.5,
        orphan_timeout=3.0,
        takeover_stagger=0.5,
    )
    farm = make_flat_farm(n, seed=seed, params=params, vlans=(1, 2))
    run_stable(farm)
    return farm


def test_subgroup_mode_discovers_and_stabilizes():
    farm = integration_farm(9, 1, 3)
    gsc = farm.gsc()
    assert len(gsc.adapters) == 18


def test_subgroup_member_failure_detected():
    farm = integration_farm(9, 2, 3)
    t0 = farm.sim.now
    farm.hosts["node-4"].crash()
    farm.sim.run(until=t0 + 30)
    assert farm.gsc().node_status("node-4") is False


def test_subgroup_polling_happens():
    farm = integration_farm(9, 3, 3)
    t0 = farm.sim.now
    before = farm.sim.trace.count("net.send")
    farm.sim.run(until=t0 + 20)
    # counters always work even if records are capped
    assert farm.sim.trace.count("net.send") > before


def test_catastrophic_subgroup_failure_detected_by_poll():
    """All members of one subgroup die at once: intra-subgroup heartbeating
    can't see it (nobody is left to report), only the leader's poll can."""
    farm = integration_farm(9, 4, 3)
    # find the vlan-2 leader and a subgroup not containing it
    from repro.gulfstream.adapter_proto import AdapterState
    from repro.gulfstream.subgroups import SubgroupHeartbeat, partition_subgroups

    leader = next(
        p for d in farm.daemons.values() for p in d.protocols.values()
        if p.state is AdapterState.LEADER and p.nic.port.vlan == 2
    )
    assert isinstance(leader.hb, SubgroupHeartbeat)
    chunks = leader.hb.subgroups
    victim_chunk = chunks[1] if leader.ip not in chunks[1] else chunks[0]
    t0 = farm.sim.now
    for ip in victim_chunk:
        farm.fabric.nics[ip].fail()
    farm.sim.run(until=t0 + 40)
    assert leader.view is not None
    for ip in victim_chunk:
        assert not leader.view.contains(ip)
    assert farm.sim.trace.count("gs.subgroup.dead") >= 1
