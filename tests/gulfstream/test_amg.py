"""AMG views: leadership rule, rank order, ring geometry (property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gulfstream.amg import AMGView, choose_leader, rank_members
from repro.gulfstream.messages import MemberInfo
from repro.net.addressing import IPAddress


def mi(ip, eligible=False, node="n", idx=0):
    return MemberInfo(ip=IPAddress(ip), node=node, adapter_index=idx, admin_eligible=eligible)


# unique IPs drawn as integers
ips = st.lists(
    st.integers(min_value=1, max_value=0xFFFFFFF0), min_size=1, max_size=30, unique=True
)


def test_choose_leader_highest_ip():
    members = [mi("10.0.0.1"), mi("10.0.0.9"), mi("10.0.0.5")]
    assert choose_leader(members).ip == IPAddress("10.0.0.9")


def test_choose_leader_eligibility_trumps_ip():
    """§2.2: only flagged nodes may lead the administrative AMG."""
    members = [mi("10.0.0.9"), mi("10.0.0.1", eligible=True)]
    assert choose_leader(members).ip == IPAddress("10.0.0.1")


def test_choose_leader_among_eligible_highest_ip():
    members = [mi("10.0.0.2", eligible=True), mi("10.0.0.1", eligible=True), mi("10.0.0.9")]
    assert choose_leader(members).ip == IPAddress("10.0.0.2")


def test_choose_leader_empty_raises():
    with pytest.raises(ValueError):
        choose_leader([])


def test_rank_order_leader_first_then_descending():
    view = AMGView.build([mi("10.0.0.1"), mi("10.0.0.3"), mi("10.0.0.2")], epoch=1)
    assert [str(m.ip) for m in view.members] == ["10.0.0.3", "10.0.0.2", "10.0.0.1"]
    assert view.leader_ip == IPAddress("10.0.0.3")
    assert view.successor.ip == IPAddress("10.0.0.2")


def test_group_key_minted_from_founder():
    view = AMGView.build([mi("10.0.0.5")], epoch=3)
    assert view.group_key == "10.0.0.5@3"


def test_group_key_preserved_when_given():
    view = AMGView.build([mi("10.0.0.5")], epoch=7, group_key="10.0.0.9@1")
    assert view.group_key == "10.0.0.9@1"


def test_rank_and_contains():
    view = AMGView.build([mi("10.0.0.1"), mi("10.0.0.2")], epoch=1)
    assert view.rank(IPAddress("10.0.0.2")) == 0
    assert view.rank(IPAddress("10.0.0.1")) == 1
    assert view.contains(IPAddress("10.0.0.1"))
    assert not view.contains(IPAddress("10.0.0.3"))
    with pytest.raises(KeyError):
        view.rank(IPAddress("10.0.0.3"))


def test_singleton_has_no_neighbors_or_successor():
    view = AMGView.build([mi("10.0.0.1")], epoch=1)
    assert view.neighbors(IPAddress("10.0.0.1")) == (None, None)
    assert view.successor is None


def test_pair_neighbors_coincide():
    view = AMGView.build([mi("10.0.0.1"), mi("10.0.0.2")], epoch=1)
    left, right = view.neighbors(IPAddress("10.0.0.1"))
    assert left == right == IPAddress("10.0.0.2")


def test_without_removes():
    view = AMGView.build([mi("10.0.0.1"), mi("10.0.0.2"), mi("10.0.0.3")], epoch=1)
    rest = view.without([IPAddress("10.0.0.3")])
    assert [str(m.ip) for m in rest] == ["10.0.0.2", "10.0.0.1"]


def test_empty_view_rejected():
    with pytest.raises(ValueError):
        AMGView.build([], epoch=1)


@settings(max_examples=80, deadline=None)
@given(ips)
def test_property_ring_is_a_single_cycle(values):
    """Following 'right' pointers visits every member exactly once."""
    view = AMGView.build([mi(v) for v in values], epoch=1)
    start = view.leader_ip
    seen = []
    cur = start
    for _ in range(len(values)):
        seen.append(cur)
        cur = view.neighbors(cur)[1]
        if cur is None:  # singleton
            break
    if len(values) > 1:
        assert cur == start
        assert len(set(seen)) == len(values)


@settings(max_examples=80, deadline=None)
@given(ips)
def test_property_neighbors_are_mutual(values):
    """X's right neighbour has X as its left neighbour."""
    view = AMGView.build([mi(v) for v in values], epoch=1)
    for m in view.members:
        left, right = view.neighbors(m.ip)
        if right is not None:
            assert view.neighbors(right)[0] == m.ip
        if left is not None:
            assert view.neighbors(left)[1] == m.ip


@settings(max_examples=80, deadline=None)
@given(ips)
def test_property_rank_order_deterministic_and_total(values):
    members = [mi(v) for v in values]
    a = rank_members(members)
    b = rank_members(reversed(members))
    assert a == b
    assert [int(m.ip) for m in a] == sorted((int(m.ip) for m in a), reverse=True)


@settings(max_examples=50, deadline=None)
@given(ips, st.data())
def test_property_leader_is_choose_leader(values, data):
    members = [mi(v) for v in values]
    view = AMGView.build(members, epoch=1)
    assert view.leader == choose_leader(members)
