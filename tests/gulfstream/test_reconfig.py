"""Dynamic domain reconfiguration (§3.1): the full move cascade."""

import pytest

from repro.gulfstream.adapter_proto import AdapterState
from repro.gulfstream.reconfig import ReconfigurationManager
from repro.net.addressing import IPAddress

from tests.conftest import FAST, make_flat_farm, run_stable

# move cascade needs responsive heartbeating + orphan handling
MV = FAST.derive(hb_interval=0.5, probe_timeout=0.5, orphan_timeout=2.5,
                 takeover_stagger=0.5, suspect_retry_interval=0.5)


def build_two_domain_farm(seed):
    """VLAN 1 admin, VLANs 2 and 3 two isolated 'domains'."""
    from repro.farm.builder import FarmBuilder
    from repro.node.osmodel import OSParams

    b = FarmBuilder(seed=seed, params=MV, os_params=OSParams.fast())
    for i in range(3):
        b.add_node(f"a-{i}", [1, 2], admin_eligible=(i == 0))
    for i in range(3):
        b.add_node(f"b-{i}", [1, 3])
    farm = b.finish()
    farm.start()
    run_stable(farm)
    return farm


def moved_proto(farm, ip):
    for d in farm.daemons.values():
        p = d.protocol_for(IPAddress(ip))
        if p is not None:
            return p
    raise KeyError(ip)


def test_expected_move_joins_new_amg_without_failure_notifications():
    farm = build_two_domain_farm(1)
    rm = farm.reconfig()
    ip = farm.hosts["a-1"].adapters[1].ip
    t0 = farm.sim.now
    rm.move_adapter(ip, 3)
    farm.sim.run(until=t0 + 40)
    proto = moved_proto(farm, ip)
    # the adapter ended up in the vlan-3 AMG with all of domain b
    assert proto.view is not None and proto.view.size == 4
    assert farm.bus.count("move_completed") == 1
    assert farm.bus.count("adapter_failed") == 0  # suppressed (§3.1)
    assert farm.bus.count("inconsistency") == 0
    # old AMG recommitted without the mover
    vlan2 = [
        p for d in farm.daemons.values() for p in d.protocols.values()
        if p.nic.port is not None and p.nic.port.vlan == 2
    ]
    assert all(p.view.size == 2 for p in vlan2)


def test_expected_move_updates_config_db():
    farm = build_two_domain_farm(2)
    rm = farm.reconfig()
    ip = farm.hosts["a-2"].adapters[1].ip
    rm.move_adapter(ip, 3)
    assert farm.configdb.expected(ip).vlan == 3
    farm.sim.run(until=farm.sim.now + 40)
    # post-move verification is clean because the DB was updated in step
    assert farm.gsc().verify_topology() == []


def test_unexpected_move_flagged_as_inconsistency():
    farm = build_two_domain_farm(3)
    ip = farm.hosts["a-1"].adapters[1].ip
    nic = farm.fabric.nics[ip]
    t0 = farm.sim.now
    # rogue operator moves the port behind GSC's back
    farm.fabric.move_port_vlan(nic.port.switch.name, nic.port.index, 3)
    farm.sim.run(until=t0 + 40)
    moves = farm.bus.of_kind("move_detected")
    assert moves and moves[0].detail["expected"] is False
    assert farm.bus.count("inconsistency") >= 1


def test_move_adapter_same_vlan_is_noop():
    farm = build_two_domain_farm(4)
    rm = farm.reconfig()
    ip = farm.hosts["a-1"].adapters[1].ip
    rm.move_adapter(ip, 2)
    assert rm.moves_issued == []


def test_move_unknown_adapter_raises():
    farm = build_two_domain_farm(5)
    rm = farm.reconfig()
    with pytest.raises(KeyError):
        rm.move_adapter(IPAddress("1.2.3.4"), 3)


def test_move_node_moves_all_domain_adapters_not_admin():
    farm = build_two_domain_farm(6)
    rm = farm.reconfig()
    host = farm.hosts["a-1"]
    t0 = farm.sim.now
    rm.move_node(host, {2: 3})
    farm.sim.run(until=t0 + 40)
    assert host.adapters[0].port.vlan == 1  # admin untouched
    assert host.adapters[1].port.vlan == 3
    assert farm.bus.count("move_completed") == 1
    assert farm.gsc().node_status("a-1") is True


def test_move_into_empty_vlan_completes_at_deadline():
    """Moving to a VLAN with no other members: nobody to merge with, so the
    move completes via the deadline path with the adapter up as a
    singleton."""
    farm = build_two_domain_farm(7)
    params_deadline = MV.move_deadline
    rm = farm.reconfig()
    ip = farm.hosts["a-1"].adapters[1].ip
    t0 = farm.sim.now
    rm.move_adapter(ip, 42)  # fresh, empty vlan
    farm.sim.run(until=t0 + params_deadline + 30)
    proto = moved_proto(farm, ip)
    assert proto.state is AdapterState.LEADER and proto.view.size == 1
    assert farm.bus.count("move_completed") == 1
    assert farm.bus.count("adapter_failed") == 0


def test_move_of_crashed_adapter_releases_failure_at_deadline():
    """If the 'moved' adapter actually died, the suppressed failure must be
    released once the move deadline passes (§3.1 inversion guard)."""
    farm = build_two_domain_farm(8)
    rm = farm.reconfig()
    nic = farm.hosts["a-1"].adapters[1]
    t0 = farm.sim.now
    rm.move_adapter(nic.ip, 3)
    nic.fail()  # dies mid-move
    farm.sim.run(until=t0 + MV.move_deadline + 30)
    assert farm.bus.count("move_failed") == 1
    assert farm.bus.count("adapter_failed") == 1


def test_reconfig_requires_authorized_console():
    farm = make_flat_farm(3, seed=9, params=MV, eligible=())
    run_stable(farm)
    with pytest.raises(RuntimeError):
        ReconfigurationManager(farm.gsc())
