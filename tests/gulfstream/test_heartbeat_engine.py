"""RingHeartbeat engine unit tests, driven against a stub protocol."""

from typing import Any

import pytest

from repro.gulfstream.amg import AMGView
from repro.gulfstream.heartbeat import RingHeartbeat
from repro.gulfstream.messages import Heartbeat, MemberInfo
from repro.gulfstream.params import GSParams
from repro.net.addressing import IPAddress
from repro.sim.engine import Simulator


def mi(ip):
    return MemberInfo(ip=IPAddress(ip), node="n", adapter_index=0)


class StubProto:
    def __init__(self, sim, ip, params=None):
        self.sim = sim
        self.ip = IPAddress(ip)
        self.params = params or GSParams(hb_interval=1.0, hb_miss_threshold=2,
                                         orphan_timeout=5.0)
        self.sent: list[tuple[IPAddress, Any]] = []

        class _Nic:
            name = f"stub/{ip}"

        self.nic = _Nic()

    def send(self, dst, payload, size=None):
        self.sent.append((dst, payload))
        return True

    def send_many(self, dsts, payload, size=None):
        for dst in dsts:
            self.sent.append((dst, payload))
        return True

    def trace(self, *a, **k):
        pass


def make_engine(n=4, me="10.0.0.2", mode="bidirectional", **param_overrides):
    sim = Simulator(seed=1)
    params = GSParams(hb_interval=1.0, hb_miss_threshold=2, orphan_timeout=5.0,
                      hb_mode=mode, **param_overrides)
    proto = StubProto(sim, me, params)
    view = AMGView.build([mi(f"10.0.0.{i + 1}") for i in range(n)], epoch=1)
    suspects, silences = [], []
    eng = RingHeartbeat(proto, view,
                        on_suspect=suspects.append,
                        on_total_silence=lambda: silences.append(sim.now))
    return sim, proto, view, eng, suspects, silences


def test_bidirectional_targets_are_both_neighbors():
    sim, proto, view, eng, *_ = make_engine(4, me="10.0.0.2")
    left, right = view.neighbors(proto.ip)
    assert eng.targets == {left, right}
    assert eng.monitored == {left, right}


def test_unidirectional_sends_right_monitors_left():
    sim, proto, view, eng, *_ = make_engine(4, me="10.0.0.2", mode="unidirectional")
    left, right = view.neighbors(proto.ip)
    assert eng.targets == {right}
    assert eng.monitored == {left}


def test_pair_group_single_neighbor():
    sim, proto, view, eng, *_ = make_engine(2, me="10.0.0.1")
    assert eng.targets == {IPAddress("10.0.0.2")}
    assert eng.monitored == {IPAddress("10.0.0.2")}


def test_heartbeats_sent_each_interval():
    sim, proto, view, eng, *_ = make_engine(4)
    sim.run(until=5.0)
    hbs = [p for (_, p) in proto.sent if isinstance(p, Heartbeat)]
    # 2 targets x ~5 intervals (jittered start)
    assert 6 <= len(hbs) <= 12
    assert eng.sent == len(hbs)


def test_silent_neighbor_suspected_after_threshold():
    sim, proto, view, eng, suspects, _ = make_engine(4)
    left, right = view.neighbors(proto.ip)
    # only the right neighbour keeps talking
    feeder = Simulator  # noqa: F841  (clarity)
    def feed():
        eng.on_heartbeat(right, 1)
    from repro.sim.process import Timer
    Timer(sim, 1.0, feed, initial_delay=0.2)
    sim.run(until=6.0)
    assert left in suspects
    assert right not in suspects


def test_heartbeat_clears_pending_suspicion_and_resuspects_later():
    sim, proto, view, eng, suspects, _ = make_engine(4)
    left, right = view.neighbors(proto.ip)
    from repro.sim.process import Timer
    Timer(sim, 1.0, lambda: eng.on_heartbeat(right, 1), initial_delay=0.2)
    sim.run(until=6.0)
    first = len(suspects)
    assert first >= 1
    # left comes back...
    eng.on_heartbeat(left, 1)
    sim.run(until=8.0)
    assert len(suspects) == first  # no new suspicion while fresh
    # ...then goes silent again: engine re-raises
    sim.run(until=20.0)
    assert len(suspects) > first


def test_total_silence_raised_and_reraised():
    sim, proto, view, eng, _, silences = make_engine(4)
    sim.run(until=18.0)
    # orphan_timeout=5: first raise ~5.5s, re-raised every ~5s after
    assert len(silences) >= 2
    assert silences[1] - silences[0] >= 5.0 - 1e-9


def test_any_heartbeat_resets_silence_episode():
    sim, proto, view, eng, _, silences = make_engine(4)
    left, right = view.neighbors(proto.ip)
    from repro.sim.process import Timer
    Timer(sim, 2.0, lambda: eng.on_heartbeat(left, 1), initial_delay=0.5)
    sim.run(until=20.0)
    assert silences == []


def test_stop_halts_sending():
    sim, proto, view, eng, *_ = make_engine(4)
    sim.run(until=3.0)
    n = len(proto.sent)
    eng.stop()
    sim.run(until=10.0)
    assert len(proto.sent) == n


def test_heartbeat_from_unmonitored_ignored():
    sim, proto, view, eng, suspects, _ = make_engine(5, me="10.0.0.3")
    stranger = IPAddress("10.0.0.1")  # in group but not my neighbour
    assert stranger not in eng.monitored
    eng.on_heartbeat(stranger, 1)
    assert eng.received == 0


def test_send_jitter_derives_from_hb_jitter_frac():
    """The send timer's jitter is hb_jitter_frac * hb_interval (the old
    code's `min(0.05*i, 0.45*i)` was a no-op min, always the 0.05 arm)."""
    _, _, _, eng, *_ = make_engine(4, hb_jitter_frac=0.25)
    assert eng._send_timer is not None
    assert eng._send_timer.jitter == pytest.approx(0.25 * 1.0)
    # large-but-valid fractions still satisfy the Timer's jitter < interval
    _, _, _, eng2, *_ = make_engine(4, hb_jitter_frac=0.95)
    assert eng2._send_timer is not None and eng2._send_timer.jitter < 1.0


def test_zero_jitter_frac_disables_send_jitter():
    sim, proto, _, eng, *_ = make_engine(4, hb_jitter_frac=0.0)
    assert eng._send_timer is not None and eng._send_timer.jitter == 0.0
    sim.run(until=5.0)
    assert eng.sent > 0


def test_send_targets_cached_in_deterministic_order():
    _, _, view, eng, *_ = make_engine(4, me="10.0.0.2")
    assert set(eng._send_targets) == eng.targets
    assert list(eng._send_targets) == sorted(eng.targets, key=int)
