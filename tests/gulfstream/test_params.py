"""Protocol-parameter validation and derivation."""

import pytest

from repro.gulfstream.params import GSParams


def test_defaults_validate():
    GSParams().validate()


def test_derive_replaces_fields():
    p = GSParams().derive(beacon_duration=10.0, hb_interval=0.5)
    assert p.beacon_duration == 10.0
    assert p.hb_interval == 0.5
    # original untouched (frozen)
    assert GSParams().beacon_duration == 5.0


def test_zero_beacon_duration_is_legal():
    """§2.1: 'Setting it to zero leads to the immediate formation of a
    singleton AMG for each adapter.'"""
    GSParams(beacon_duration=0.0).validate()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"beacon_duration": -1.0},
        {"beacon_interval": 0.0},
        {"hb_interval": 0.0},
        {"hb_miss_threshold": 0},
        {"hb_mode": "diagonal"},
        {"subgroup_size": 1},
        {"probe_retries": -1},
        {"hb_jitter_frac": -0.1},
        {"hb_jitter_frac": 1.0},
    ],
)
def test_invalid_params_rejected(kwargs):
    with pytest.raises(ValueError):
        GSParams(**kwargs).validate()


def test_hb_jitter_frac_satisfies_timer_contract():
    """Any valid frac yields jitter < interval, the Timer's requirement."""
    for frac in (0.0, 0.05, 0.45, 0.999):
        p = GSParams(hb_jitter_frac=frac)
        p.validate()
        assert p.hb_jitter_frac * p.hb_interval < p.hb_interval


def test_membership_msg_size_scales_with_members():
    p = GSParams()
    assert p.membership_msg_size(10) - p.membership_msg_size(0) == 10 * p.size_per_member


def test_params_hashable_and_frozen():
    p = GSParams()
    with pytest.raises(Exception):
        p.hb_interval = 2.0  # type: ignore[misc]
