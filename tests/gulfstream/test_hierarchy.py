"""The §4.2 multi-level reporting hierarchy (zone aggregators)."""

import pytest

from repro.farm import build_zoned_farm
from repro.gulfstream import GSParams
from repro.gulfstream.hierarchy import ZoneConfig
from repro.net.addressing import IPAddress
from repro.node.osmodel import OSParams

PARAMS = GSParams(beacon_duration=1.5, beacon_interval=0.5, amg_stable_wait=1.5,
                  gsc_stable_wait=3.0, hb_interval=0.5, probe_timeout=0.5,
                  orphan_timeout=2.5, takeover_stagger=0.5)


def zoned_farm(n_zones=3, nodes=4, seed=1, use_zones=True, flush=1.0,
               vlans_per_zone=2):
    farm = build_zoned_farm(n_zones, nodes, seed=seed, params=PARAMS,
                            os_params=OSParams.fast(), use_zones=use_zones,
                            flush_interval=flush, vlans_per_zone=vlans_per_zone)
    farm.start()
    t = farm.run_until_stable(timeout=120.0)
    assert t is not None
    return farm


def aggregators(farm):
    return [d.aggregator for d in farm.daemons.values() if d.aggregator is not None]


def test_zone_config_routing():
    cfg = ZoneConfig(
        vlan_zone={20: "a", 21: "b"},
        aggregator_ips={"a": IPAddress("10.0.0.1"), "b": IPAddress("10.0.0.2")},
    )
    assert cfg.aggregator_for_vlan(20) == IPAddress("10.0.0.1")
    assert cfg.aggregator_for_vlan(99) is None
    assert cfg.aggregator_for_vlan(None) is None
    assert cfg.zone_of_ip(IPAddress("10.0.0.2")) == "b"
    assert cfg.zone_of_ip(IPAddress("9.9.9.9")) is None


def test_zoned_discovery_reaches_gsc():
    farm = zoned_farm()
    gsc = farm.gsc()
    # 2 mgmt admin + (3 zones * 4 nodes * 3 adapters) = 38 adapters;
    # 1 admin AMG + 3 zones * 2 vlans = 7 AMGs
    assert len(gsc.adapters) == 38
    assert len(gsc.groups) == 7
    aggs = aggregators(farm)
    assert len(aggs) == 3
    # every zone AMG's initial report flowed through its aggregator
    assert all(a.reports_in >= 1 and a.batches_out >= 1 for a in aggs)


def test_zoned_failure_detection_equivalent_to_flat():
    """The hierarchy changes transport, not semantics: GSC's conclusions
    match the flat farm's."""
    results = {}
    for use_zones in (True, False):
        farm = zoned_farm(seed=2, use_zones=use_zones)
        t0 = farm.sim.now
        farm.hosts["z1-n2"].crash()
        farm.sim.run(until=t0 + 25)
        gsc = farm.gsc()
        results[use_zones] = (
            gsc.node_status("z1-n2"),
            farm.bus.count("adapter_failed"),
            farm.bus.count("node_failed"),
        )
    assert results[True] == results[False] == (False, 3, 1)


def test_batching_reduces_gsc_frames_on_burst():
    """Simultaneous failures in one zone arrive at GSC as one batch frame
    instead of one frame per report."""
    def gsc_frames_for_burst(use_zones, seed):
        farm = zoned_farm(n_zones=2, nodes=6, seed=seed, use_zones=use_zones,
                          flush=2.0, vlans_per_zone=3)
        gsc_daemon = next(d for d in farm.daemons.values() if d.is_gsc)
        f0 = gsc_daemon.report_frames_in
        t0 = farm.sim.now
        farm.hosts["z0-n3"].crash()  # 3 zone AMGs each report a removal
        farm.sim.run(until=t0 + 30)
        gsc = farm.gsc()
        assert gsc.node_status("z0-n3") is False
        return gsc_daemon.report_frames_in - f0

    zoned = gsc_frames_for_burst(True, seed=3)
    flat = gsc_frames_for_burst(False, seed=3)
    assert zoned < flat


def test_aggregator_death_falls_back_to_direct_reports():
    """A dead aggregator must not swallow failure reports: the
    leader->aggregator hop is acked, and unacked reports are re-sent
    directly to GSC after ~a flush window."""
    farm = zoned_farm(seed=4)
    agg_host = farm.hosts["z2-n0"]  # zone-2's aggregator node
    t0 = farm.sim.now
    agg_host.crash()
    farm.sim.run(until=t0 + 30)
    gsc = farm.gsc()
    # full inference despite the aggregator dying: the admin-adapter
    # removal arrived directly (admin vlan has no zone) and the zone
    # removals arrived through the ack-timeout fallback
    assert farm.sim.trace.count("gs.zone.fallback") >= 1
    assert gsc.node_status("z2-n0") is False
    # once the node restarts, its aggregator resumes and the zone resyncs
    agg_host.restart()
    farm.sim.run(until=t0 + 90)
    assert gsc.node_status("z2-n0") is True
    zone_adapters = [ip for ip, rec in gsc.adapters.items() if rec.node.startswith("z2")]
    assert all(gsc.adapters[ip].up for ip in zone_adapters)


def test_acked_hop_does_not_duplicate_reports():
    """With a healthy aggregator every report is acked, so the fallback
    path stays quiet and GSC sees each logical report exactly once."""
    farm = zoned_farm(seed=7)
    gsc = farm.gsc()
    t0 = farm.sim.now
    n0 = gsc.reports_received
    farm.hosts["z0-n2"].crash()
    farm.sim.run(until=t0 + 30)
    assert farm.sim.trace.count("gs.zone.fallback") == 0
    # 2 zone AMG removals + 1 admin AMG removal = 3 logical reports
    assert gsc.reports_received - n0 == 3


def test_aggregator_stops_with_daemon():
    farm = zoned_farm(seed=5)
    d = farm.daemons["z0-n0"]
    assert d.aggregator is not None
    d.stop()
    assert d.aggregator is None


def test_admin_vlan_reports_bypass_zones():
    """The admin AMG has no zone, so its reports go straight to GSC."""
    farm = zoned_farm(seed=6)
    # crash a management node (admin adapter only)
    t0 = farm.sim.now
    farm.hosts["mgmt-0"].crash()
    farm.sim.run(until=t0 + 25)
    gsc = farm.gsc()
    assert gsc.node_status("mgmt-0") is False
    # no aggregator saw that report
    assert all(
        a.reports_in == pytest.approx(a.reports_in) for a in aggregators(farm)
    )
