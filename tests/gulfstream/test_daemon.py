"""Daemon lifecycle, report routing, and restart semantics."""

from repro.gulfstream.adapter_proto import AdapterState
from repro.net.addressing import IPAddress

from tests.conftest import FAST, make_flat_farm, run_stable

HB = FAST.derive(hb_interval=0.5, probe_timeout=0.5, orphan_timeout=3.0,
                 takeover_stagger=0.5)


def test_daemon_runs_one_protocol_per_adapter():
    farm = make_flat_farm(3, seed=1, params=HB)
    run_stable(farm)
    for name, d in farm.daemons.items():
        assert set(d.protocols) == {0, 1}
        assert d.admin_protocol is d.protocols[0]


def test_start_is_idempotent():
    farm = make_flat_farm(3, seed=2, params=HB)
    d = farm.daemons["node-0"]
    d.start()  # second call (farm.start already called)
    run_stable(farm)
    assert len(d.protocols) == 2


def test_stop_silences_node():
    farm = make_flat_farm(4, seed=3, params=HB)
    run_stable(farm)
    d = farm.daemons["node-2"]
    d.stop()
    assert all(p.state is AdapterState.STOPPED for p in d.protocols.values())
    assert all(n.handler is None for n in farm.hosts["node-2"].adapters)


def test_stop_start_cycle_rejoins():
    farm = make_flat_farm(4, seed=4, params=HB)
    run_stable(farm)
    d = farm.daemons["node-2"]
    t0 = farm.sim.now
    d.stop()
    farm.sim.run(until=t0 + 15)  # old groups recommit without node-2
    d.start()
    farm.sim.run(until=t0 + 60)
    for p in d.protocols.values():
        assert p.view is not None and p.view.size == 4


def test_protocol_for_lookup():
    farm = make_flat_farm(2, seed=5, params=HB)
    run_stable(farm)
    d = farm.daemons["node-0"]
    ip = farm.hosts["node-0"].adapters[1].ip
    assert d.protocol_for(ip).nic.index == 1
    assert d.protocol_for(IPAddress("9.9.9.9")) is None


def test_is_gsc_flag_tracks_leadership():
    farm = make_flat_farm(4, seed=6, params=HB, eligible=(0,))
    run_stable(farm)
    assert farm.daemons["node-0"].is_gsc
    assert sum(1 for d in farm.daemons.values() if d.is_gsc) == 1


def test_send_report_fails_before_admin_group_forms():
    from repro.gulfstream.messages import MembershipReport

    farm = make_flat_farm(3, seed=7, params=HB)
    d = farm.daemons["node-1"]
    # before running the sim at all: no admin view yet
    report = MembershipReport(
        leader=IPAddress("10.0.0.1"), group_key="x@1", epoch=1, kind="full"
    )
    assert d.send_report(report) is False


def test_reports_lost_when_gsc_briefly_absent_are_traced():
    farm = make_flat_farm(4, seed=8, params=HB)
    run_stable(farm)
    gsc_daemon = next(d for d in farm.daemons.values() if d.is_gsc)
    gsc_daemon.central.deactivate()
    from repro.gulfstream.messages import MembershipReport

    gsc_daemon.on_report_frame(
        gsc_daemon.admin_protocol,
        MembershipReport(leader=IPAddress("10.0.0.1"), group_key="x@1", epoch=1, kind="full"),
    )
    assert farm.sim.trace.count("gs.report.lost") == 1
