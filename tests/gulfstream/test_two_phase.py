"""Two-phase commit unit tests (coordinator driven against a stub protocol)."""

from typing import Any

import pytest

from repro.gulfstream.messages import MemberInfo, Prepare, PrepareAck
from repro.gulfstream.params import GSParams
from repro.gulfstream.two_phase import CommitCoordinator
from repro.net.addressing import IPAddress
from repro.sim.engine import Simulator


def mi(ip):
    return MemberInfo(ip=IPAddress(ip), node="n", adapter_index=0)


class StubProto:
    """Minimal protocol surface the coordinator needs."""

    def __init__(self, sim, ip):
        self.sim = sim
        self.ip = IPAddress(ip)
        self.params = GSParams(twopc_timeout=1.0)
        self.sent: list[tuple[IPAddress, Any]] = []

    def send(self, dst, payload, size=None):
        self.sent.append((dst, payload))
        return True

    def trace(self, *a, **k):
        pass


def test_singleton_commit_is_immediate():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.1")
    done = []
    CommitCoordinator(proto, [mi("10.0.0.1")], epoch=1, reason="formation", on_done=done.append)
    assert len(done) == 1
    assert done[0].size == 1 and done[0].epoch == 1
    assert proto.sent == []  # nothing on the wire


def test_all_acks_commit_early():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    members = [mi("10.0.0.1"), mi("10.0.0.2"), mi("10.0.0.3")]
    done = []
    c = CommitCoordinator(proto, members, 1, "formation", done.append)
    prepares = [p for p in proto.sent if isinstance(p[1], Prepare)]
    assert len(prepares) == 2
    for ip in ("10.0.0.1", "10.0.0.2"):
        c.on_prepare_ack(PrepareAck(IPAddress(ip), proto.ip, 1, ok=True))
    assert len(done) == 1
    view = done[0]
    assert view.size == 3 and view.leader_ip == IPAddress("10.0.0.3")
    commits = [p for p in proto.sent if not isinstance(p[1], Prepare)]
    assert len(commits) == 2  # commit to both ackers


def test_silent_member_dropped_at_timeout():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    members = [mi("10.0.0.1"), mi("10.0.0.2"), mi("10.0.0.3")]
    done = []
    c = CommitCoordinator(proto, members, 1, "formation", done.append)
    c.on_prepare_ack(PrepareAck(IPAddress("10.0.0.1"), proto.ip, 1, ok=True))
    sim.run(until=2.0)  # past twopc_timeout; 10.0.0.2 never answered
    assert len(done) == 1
    assert [str(m.ip) for m in done[0].members] == ["10.0.0.3", "10.0.0.1"]


def test_nack_with_hint_retries_at_higher_epoch():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    members = [mi("10.0.0.1"), mi("10.0.0.3")]
    done = []
    c = CommitCoordinator(proto, members, 1, "merge", done.append)
    c.on_prepare_ack(
        PrepareAck(IPAddress("10.0.0.1"), proto.ip, 1, ok=False, current_epoch=5)
    )
    # retried immediately at epoch > 5
    assert c.epoch == 6
    retry = [p for (_, p) in proto.sent if isinstance(p, Prepare) and p.epoch == 6]
    assert len(retry) == 1
    c.on_prepare_ack(PrepareAck(IPAddress("10.0.0.1"), proto.ip, 6, ok=True))
    assert done and done[0].epoch == 6


def test_retry_budget_bounded():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    members = [mi("10.0.0.1"), mi("10.0.0.3")]
    done = []
    c = CommitCoordinator(proto, members, 1, "merge", done.append)
    for _ in range(10):
        if done:
            break
        c.on_prepare_ack(
            PrepareAck(IPAddress("10.0.0.1"), proto.ip, c.epoch, ok=False, current_epoch=c.epoch)
        )
    assert len(done) == 1
    # the persistent nacker is excluded from the final view
    assert [str(m.ip) for m in done[0].members] == ["10.0.0.3"]


def test_stale_ack_ignored():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    done = []
    c = CommitCoordinator(proto, [mi("10.0.0.1"), mi("10.0.0.3")], 4, "join", done.append)
    c.on_prepare_ack(PrepareAck(IPAddress("10.0.0.1"), proto.ip, 3, ok=True))  # old epoch
    assert not done
    sim.run(until=2.0)
    assert done and done[0].size == 1  # the stale ack never counted


def test_cancel_prevents_commit():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    done = []
    c = CommitCoordinator(proto, [mi("10.0.0.1"), mi("10.0.0.3")], 1, "join", done.append)
    c.cancel()
    sim.run(until=5.0)
    assert done == []


def test_coordinator_must_be_member():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    with pytest.raises(ValueError):
        CommitCoordinator(proto, [mi("10.0.0.1")], 1, "join", lambda v: None)


def test_group_key_preserved_across_commit():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    done = []
    CommitCoordinator(
        proto, [mi("10.0.0.3")], 9, "takeover", done.append, group_key="10.0.0.9@1"
    )
    assert done[0].group_key == "10.0.0.9@1"


def test_fresh_group_key_minted_from_leader_and_epoch():
    sim = Simulator()
    proto = StubProto(sim, "10.0.0.3")
    done = []
    CommitCoordinator(proto, [mi("10.0.0.3"), mi("10.0.0.1")], 2, "formation", done.append)
    sim.run(until=2.0)
    assert done[0].group_key == "10.0.0.3@2"
