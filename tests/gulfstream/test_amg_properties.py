"""Property-based tests for AMG rank order and ring geometry.

The rank order is load-bearing three times over: it picks the leader, it
designates the takeover successor, and it *is* the heartbeat ring. These
properties pin the algebra for arbitrary member sets rather than the
handful of fixtures the unit tests use.
"""

from hypothesis import given, strategies as st

from repro.gulfstream.amg import AMGView, choose_leader, rank_members
from repro.gulfstream.messages import MemberInfo
from repro.net.addressing import IPAddress


@st.composite
def member_lists(draw, min_size=1, max_size=20):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    ips = draw(
        st.lists(
            st.integers(min_value=1, max_value=0xFFFFFFFE),
            min_size=n, max_size=n, unique=True,
        )
    )
    flags = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return [
        MemberInfo(IPAddress(ip), f"n{i}", 0, admin_eligible=flag)
        for i, (ip, flag) in enumerate(zip(ips, flags))
    ]


@given(member_lists())
def test_leader_is_choose_leader(members):
    view = AMGView.build(members, epoch=1)
    assert view.leader == choose_leader(members)
    assert view.leader.admin_eligible == max(
        m.admin_eligible for m in members
    ), "an eligible member always outranks ineligible ones"


@given(member_lists())
def test_rank_index_consistent_with_member_tuple(members):
    view = AMGView.build(members, epoch=3)
    for i, m in enumerate(view.members):
        assert view.rank(m.ip) == i
        assert view.contains(m.ip)
        assert view.member(m.ip) is m
    assert view.rank(view.leader_ip) == 0
    outsider = IPAddress(0xFFFFFFFF)
    if not view.contains(outsider):
        assert view.member(outsider) is None


@given(member_lists(), st.randoms(use_true_random=False))
def test_rank_order_is_permutation_invariant(members, rnd):
    shuffled = list(members)
    rnd.shuffle(shuffled)
    assert rank_members(shuffled) == rank_members(members)
    assert [m.ip for m in rank_members(shuffled)] == [
        m.ip for m in rank_members(members)
    ]


@given(member_lists(min_size=2))
def test_successor_takes_over_on_leader_death(members):
    view = AMGView.build(members, epoch=2)
    survivors = view.without([view.leader_ip])
    assert rank_members(survivors)[0] == view.successor
    # rank order is stable under removal: survivors keep their relative order
    assert survivors == tuple(m for m in view.members if m != view.leader)


@given(member_lists(min_size=2))
def test_ring_closes_and_visits_everyone(members):
    view = AMGView.build(members, epoch=1)
    start = view.leader_ip
    seen = []
    ip = start
    for _ in range(view.size):
        seen.append(ip)
        left, right = view.neighbors(ip)
        # left/right are inverses of each other
        assert view.neighbors(right)[0] == ip
        assert view.neighbors(left)[1] == ip
        ip = right
    assert ip == start, "walking right N times must close the ring"
    assert sorted(seen, key=int) == sorted(view.ips, key=int)


@given(member_lists(max_size=1))
def test_singleton_has_no_ring(members):
    view = AMGView.build(members, epoch=1)
    assert view.successor is None
    assert view.neighbors(view.leader_ip) == (None, None)


@given(member_lists(), st.integers(min_value=0, max_value=1000))
def test_default_group_key_names_founding_leader_and_epoch(members, epoch):
    view = AMGView.build(members, epoch=epoch)
    assert view.group_key == f"{view.leader_ip}@{epoch}"
    # an explicit key (a recommit) is carried through untouched
    kept = AMGView.build(members, epoch=epoch + 1, group_key=view.group_key)
    assert kept.group_key == view.group_key


@given(member_lists(min_size=2), st.data())
def test_without_drops_exactly_the_given_ips(members, data):
    view = AMGView.build(members, epoch=1)
    victims = data.draw(
        st.lists(st.sampled_from(list(view.ips)), unique=True, max_size=view.size - 1)
    )
    rest = view.without(victims)
    assert {m.ip for m in rest} == set(view.ips) - set(victims)
    # no re-sorting: the survivors appear in their original rank order
    assert list(rest) == [m for m in view.members if m.ip not in set(victims)]
