"""SubgroupHeartbeat engine unit tests (stub-driven)."""

from typing import Any

from repro.gulfstream.amg import AMGView
from repro.gulfstream.messages import (
    Heartbeat,
    MemberInfo,
    SubgroupPoll,
    SubgroupPollAck,
)
from repro.gulfstream.params import GSParams
from repro.gulfstream.subgroups import SubgroupHeartbeat
from repro.net.addressing import IPAddress
from repro.sim.engine import Simulator


def mi(i):
    return MemberInfo(ip=IPAddress(i), node="n", adapter_index=0)


class StubProto:
    def __init__(self, sim, ip, params):
        self.sim = sim
        self.ip = IPAddress(ip)
        self.params = params
        self.sent: list[tuple[IPAddress, Any]] = []

        class _Nic:
            name = f"stub/{ip}"

        self.nic = _Nic()

    def send(self, dst, payload, size=None):
        self.sent.append((dst, payload))
        return True

    def trace(self, *a, **k):
        pass


def make(n=9, me=9, size=3, poll=3.0):
    """View of IPs 1..n; 'me' is the highest (=leader) when me == n."""
    sim = Simulator(seed=1)
    params = GSParams(hb_interval=1.0, hb_miss_threshold=2, orphan_timeout=5.0,
                      subgroup_size=size, subgroup_poll_interval=poll,
                      probe_timeout=0.5)
    proto = StubProto(sim, me, params)
    view = AMGView.build([mi(i + 1) for i in range(n)], epoch=1)
    suspects, silences, dead_groups = [], [], []
    eng = SubgroupHeartbeat(
        proto, view,
        on_suspect=suspects.append,
        on_total_silence=lambda: silences.append(sim.now),
        on_subgroup_dead=dead_groups.append,
    )
    return sim, proto, view, eng, suspects, dead_groups


def test_heartbeats_stay_within_subgroup():
    sim, proto, view, eng, *_ = make(n=9, me=9, size=3)
    # rank order is 9..1; leader 9's chunk is [9, 8, 7]
    assert eng.my_subgroup == 0
    assert all(int(ip) in (7, 8) for ip in eng.targets)
    sim.run(until=4.0)
    hb_targets = {int(dst) for dst, p in proto.sent if isinstance(p, Heartbeat)}
    assert hb_targets <= {7, 8}


def test_leader_polls_each_foreign_subgroup():
    sim, proto, view, eng, *_ = make(n=9, me=9, size=3, poll=2.0)
    sim.run(until=2.4)  # after the poll round, before its 0.5 s walk timeout
    polls = [(int(dst), p) for dst, p in proto.sent if isinstance(p, SubgroupPoll)]
    # foreign subgroups: [6,5,4] and [3,2,1]; first candidate of each polled
    assert {d for d, _ in polls} == {6, 3}


def test_poll_ack_stops_escalation():
    # n=6, size=3: exactly one foreign subgroup [3, 2, 1]
    sim, proto, view, eng, *_ = make(n=6, me=6, size=3, poll=2.0)
    sim.run(until=2.1)
    poll = next(p for _, p in proto.sent if isinstance(p, SubgroupPoll))
    eng.on_poll_ack(SubgroupPollAck(sender=IPAddress(3), subgroup=poll.subgroup,
                                    nonce=poll.nonce))
    before = len([1 for _, p in proto.sent if isinstance(p, SubgroupPoll)])
    sim.run(until=3.5)  # past the walk timeout, before the next round
    after = len([1 for _, p in proto.sent if isinstance(p, SubgroupPoll)])
    assert after == before  # no walk down the member list


def test_silent_subgroup_walked_then_declared_dead():
    sim, proto, view, eng, suspects, dead_groups = make(n=9, me=9, size=3, poll=2.0)
    sim.run(until=8.0)  # polls at 2,4,6 + walks (0.5s timeout per member)
    assert dead_groups, "catastrophic subgroup failure never declared"
    dead = {int(ip) for ip in dead_groups[0]}
    assert dead in ({6, 5, 4}, {3, 2, 1})
    # the walk visited every member of the dead subgroup
    polled = {int(dst) for dst, p in proto.sent if isinstance(p, SubgroupPoll)}
    assert dead <= polled


def test_member_answers_polls():
    sim, proto, view, eng, *_ = make(n=9, me=5, size=3)  # rank 4: member
    assert not eng._is_leader
    eng.on_poll(SubgroupPoll(sender=IPAddress(9), subgroup=1, nonce=42))
    acks = [p for _, p in proto.sent if isinstance(p, SubgroupPollAck)]
    assert len(acks) == 1 and acks[0].nonce == 42


def test_stop_cancels_polling():
    sim, proto, view, eng, *_ = make(n=9, me=9, size=3, poll=2.0)
    eng.stop()
    sim.run(until=10.0)
    assert not any(isinstance(p, SubgroupPoll) for _, p in proto.sent)
