"""GulfStream Central: reports, stability, failover, verification, roles."""

import pytest

from repro.gulfstream.adapter_proto import AdapterState
from repro.gulfstream.messages import MembershipReport
from repro.net.addressing import IPAddress

from tests.conftest import FAST, make_flat_farm, run_stable

HB = FAST.derive(hb_interval=0.5, probe_timeout=0.5, orphan_timeout=3.0,
                 takeover_stagger=0.5, suspect_retry_interval=0.5)


def test_gsc_is_admin_amg_leader():
    farm = make_flat_farm(4, seed=1, params=HB, eligible=(0, 1))
    run_stable(farm)
    gsc_host = farm.gsc_host()
    admin_proto = farm.daemons[gsc_host.name].admin_protocol
    assert admin_proto.state is AdapterState.LEADER


def test_gsc_knows_every_adapter_and_group():
    farm = make_flat_farm(6, seed=2, params=HB)
    run_stable(farm)
    gsc = farm.gsc()
    assert len(gsc.adapters) == 12
    assert len(gsc.groups) == 2
    groups = gsc.discovered_groups()
    assert sorted(len(g) for g in groups) == [6, 6]


def test_steady_state_sends_no_reports():
    """'In the steady state, no network resources are used for group
    membership information' (§2.2)."""
    farm = make_flat_farm(5, seed=3, params=HB)
    run_stable(farm)
    gsc = farm.gsc()
    before = gsc.reports_received
    farm.sim.run(until=farm.sim.now + 60)
    assert gsc.reports_received == before


def test_deltas_not_full_membership_after_stability():
    farm = make_flat_farm(6, seed=4, params=HB)
    run_stable(farm)
    t0 = farm.sim.now
    trace = farm.sim.trace
    farm.hosts["node-2"].crash()
    farm.sim.run(until=t0 + 20)
    kinds = [
        r.data["kind"] for r in trace.select("gs.report.sent") if r.time > t0
    ]
    assert kinds and all(k == "delta" for k in kinds)


def test_gsc_failover_elects_new_instance_and_resyncs():
    """'Its failure results in a new leader election among the
    administrative adapters ... a new instance of GulfStream Central.'"""
    farm = make_flat_farm(6, seed=5, params=HB, eligible=(0, 1, 2))
    run_stable(farm)
    old = farm.gsc_host()
    t0 = farm.sim.now
    old.crash()
    farm.sim.run(until=t0 + 40)
    new = farm.gsc_host()
    assert new is not None and new.name != old.name
    gsc = farm.gsc()
    # resynced: knows every live adapter, marked the dead node down
    assert gsc.node_status(old.name) is False
    live = [h for h in farm.hosts.values() if not h.crashed]
    for h in live:
        assert gsc.node_status(h.name) is True
    assert farm.bus.count("gsc_activated") >= 2


def test_gsc_without_eligibility_still_reports():
    """With no eligible node, the highest-IP admin adapter still hosts GSC
    (reporting role) but has no authorized console (§2.2)."""
    farm = make_flat_farm(4, seed=6, params=HB, eligible=())
    run_stable(farm)
    gsc = farm.gsc()
    assert gsc is not None
    assert not gsc.console.authorized
    with pytest.raises(RuntimeError):
        farm.reconfig()


def test_inactive_central_ignores_reports():
    farm = make_flat_farm(3, seed=7, params=HB)
    run_stable(farm)
    gsc = farm.gsc()
    gsc.deactivate()
    n = gsc.reports_received
    gsc.handle_report(
        MembershipReport(
            leader=IPAddress("10.0.0.1"), group_key="x@1", epoch=1, kind="full"
        )
    )
    assert gsc.reports_received == n


def test_verify_topology_clean_farm_no_issues():
    farm = make_flat_farm(5, seed=8, params=HB)
    run_stable(farm)
    assert farm.gsc().verify_topology() == []


def test_verify_topology_detects_missing_adapter():
    farm = make_flat_farm(4, seed=9, params=HB)
    # sabotage one adapter before discovery begins
    victim = farm.hosts["node-2"].adapters[1]
    victim.fail()
    run_stable(farm)
    issues = farm.gsc().verify_topology()
    kinds = {(i.kind, str(i.ip)) for i in issues}
    assert ("missing", str(victim.ip)) in kinds


def test_verify_topology_detects_unknown_adapter():
    farm = make_flat_farm(4, seed=10, params=HB)
    run_stable(farm)
    # remove a row from the DB: that adapter becomes 'unknown'
    rogue = farm.hosts["node-1"].adapters[1]
    farm.configdb.remove(rogue.ip)
    issues = farm.gsc().verify_topology()
    assert any(i.kind == "unknown" and i.ip == rogue.ip for i in issues)
    assert farm.bus.count("inconsistency") == len(issues)


def test_verify_topology_disables_conflicting_adapter():
    """'Inconsistencies can be flagged and the affected adapters disabled,
    for security reasons' (§2.2)."""
    from repro.net.nic import NicState

    farm = make_flat_farm(4, seed=11, params=HB)
    run_stable(farm)
    rogue = farm.hosts["node-1"].adapters[1]
    farm.configdb.remove(rogue.ip)
    farm.gsc().verify_topology(disable_conflicts=True)
    assert rogue.state is NicState.DISABLED


def test_verify_without_db_raises():
    farm = make_flat_farm(3, seed=12, params=HB)
    # strip the database
    for d in farm.daemons.values():
        d.configdb = None
    farm.start = lambda: None  # already started by fixture helper
    run_stable(farm)
    gsc = farm.gsc()
    gsc.configdb = None
    with pytest.raises(RuntimeError):
        gsc.verify_topology()


def test_snmp_wiring_fallback():
    """Without a config DB, correlation wiring comes from the SNMP walk —
    the paper's future-work path."""
    from repro.farm.builder import FarmBuilder
    from repro.node.osmodel import OSParams

    b = FarmBuilder(seed=13, params=HB, os_params=OSParams.fast(), with_configdb=False)
    for i in range(4):
        b.add_node(f"node-{i}", [1, 2], admin_eligible=(i == 0))
    farm = b.finish()
    farm.start()
    run_stable(farm)
    gsc = farm.gsc()
    assert gsc.configdb is None
    assert len(gsc.correlation.adapter_switch) == 8  # learned via SNMP walk
    t0 = farm.sim.now
    farm.hosts["node-3"].crash()
    farm.sim.run(until=t0 + 20)
    assert gsc.node_status("node-3") is False
