"""Notification bus pub/sub semantics."""

from repro.gulfstream.notify import Notification, NotificationBus


def test_publish_retains_history():
    bus = NotificationBus()
    bus.publish(1.0, "adapter_failed", "10.0.0.1", node="n1")
    bus.publish(2.0, "node_failed", "n1")
    assert len(bus) == 2
    assert bus.history[0].detail == {"node": "n1"}


def test_kind_subscription_filters():
    bus = NotificationBus()
    got = []
    bus.subscribe(got.append, kind="node_failed")
    bus.publish(1.0, "adapter_failed", "x")
    bus.publish(2.0, "node_failed", "n1")
    assert [n.kind for n in got] == ["node_failed"]


def test_catch_all_subscription():
    bus = NotificationBus()
    got = []
    bus.subscribe(got.append)
    bus.publish(1.0, "a", "x")
    bus.publish(2.0, "b", "y")
    assert len(got) == 2


def test_query_helpers():
    bus = NotificationBus()
    bus.publish(1.0, "k", "s1")
    bus.publish(2.0, "k", "s2")
    bus.publish(3.0, "other", "s1")
    assert bus.count("k") == 2
    assert len(bus.of_kind("k")) == 2
    assert bus.first("k").subject == "s1"
    assert bus.last("k").subject == "s2"
    assert bus.first("k", subject="s2").time == 2.0
    assert bus.first("missing") is None
    assert bus.last("missing") is None


def test_notification_str():
    n = Notification(1.5, "node_failed", "n1", {"adapters": 3})
    s = str(n)
    assert "node_failed" in s and "adapters=3" in s
