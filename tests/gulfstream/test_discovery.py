"""Topology discovery (§2.1): formation, deferral, joins, merges, T_beacon=0.

These are integration tests over the real stack (fabric + daemons) with the
ideal/fast OS model so timing assertions stay tight.
"""


from repro.gulfstream.adapter_proto import AdapterState
from repro.net.addressing import IPAddress

from tests.conftest import FAST, make_flat_farm, run_stable


def states_on_vlan(farm, vlan):
    out = {}
    for name, daemon in farm.daemons.items():
        for proto in daemon.protocols.values():
            if proto.nic.port is not None and proto.nic.port.vlan == vlan:
                out[str(proto.ip)] = proto
    return out


def test_one_amg_per_vlan():
    farm = make_flat_farm(5, seed=1)
    run_stable(farm)
    for vlan in (1, 2):
        protos = states_on_vlan(farm, vlan)
        views = {str(p.view) for p in protos.values()}
        assert len(views) == 1, f"vlan {vlan} split: {views}"
        leaders = [p for p in protos.values() if p.state is AdapterState.LEADER]
        assert len(leaders) == 1


def test_leader_is_highest_ip_on_plain_vlan():
    farm = make_flat_farm(5, seed=2)
    run_stable(farm)
    protos = states_on_vlan(farm, 2)  # non-admin vlan: nobody eligible
    leader = next(p for p in protos.values() if p.state is AdapterState.LEADER)
    assert int(leader.ip) == max(int(p.ip) for p in protos.values())


def test_admin_leader_is_eligible_node():
    """Eligibility trumps IP on the administrative VLAN (§2.2)."""
    farm = make_flat_farm(5, seed=3, eligible=(0,))  # node-0 has the LOWEST ip
    run_stable(farm)
    protos = states_on_vlan(farm, 1)
    leader = next(p for p in protos.values() if p.state is AdapterState.LEADER)
    assert leader.host.name == "node-0"
    assert farm.gsc_host().name == "node-0"


def test_all_views_carry_full_membership_and_rank():
    farm = make_flat_farm(6, seed=4)
    run_stable(farm)
    protos = states_on_vlan(farm, 2)
    for p in protos.values():
        assert p.view.size == 6
        # rank order is common knowledge: identical tuples everywhere
    ranks = {tuple(str(m.ip) for m in p.view.members) for p in protos.values()}
    assert len(ranks) == 1


def test_singleton_when_alone():
    """'If no BEACON messages were received ... it forms its own (singleton)
    AMG and declares itself the leader.'"""
    farm = make_flat_farm(1, seed=5)
    run_stable(farm)
    for proto in farm.daemons["node-0"].protocols.values():
        assert proto.state is AdapterState.LEADER
        assert proto.view.size == 1


def test_late_node_joins_existing_group():
    farm = make_flat_farm(4, seed=6)
    run_stable(farm)
    # add a new node after stability
    from repro.gulfstream.daemon import GulfStreamDaemon
    from repro.node.host import Host
    from repro.node.osmodel import OSParams

    sim = farm.sim
    late = Host(sim, "late", os_params=OSParams.fast())
    late.add_adapter(IPAddress("10.0.9.9"), farm.fabric, "switch-0", 1)
    late.add_adapter(IPAddress("10.1.9.9"), farm.fabric, "switch-0", 2)
    d = GulfStreamDaemon(late, farm.fabric, farm.params, bus=farm.bus)
    d.start()
    sim.run(until=sim.now + 20)
    for proto in d.protocols.values():
        assert proto.view is not None and proto.view.size == 5
    # GSC learned about both new adapters
    gsc = farm.gsc()
    assert gsc.adapter_status(IPAddress("10.0.9.9")) is True
    assert gsc.adapter_status(IPAddress("10.1.9.9")) is True


def test_zero_beacon_duration_converges_by_merging():
    """T_beacon = 0: every adapter forms a singleton immediately, then the
    groups merge into one — costlier but correct (§2.1). The ideal OS model
    removes the start-up stagger that would otherwise act as an implicit
    beacon window."""
    from repro.node.osmodel import OSParams

    params = FAST.derive(beacon_duration=0.0)
    farm = make_flat_farm(4, seed=7, params=params, os_params=OSParams.ideal())
    farm.sim.run(until=40)
    protos = states_on_vlan(farm, 2)
    sizes = {p.view.size for p in protos.values() if p.view}
    assert sizes == {4}
    # merging really happened (more than one commit on the vlan)
    merges = farm.sim.trace.count("gs.merge.absorb")
    assert merges >= 1


def test_zero_beacon_costs_more_commits_than_beaconing():
    """The paper's cost argument for a non-zero beacon phase."""
    from repro.node.osmodel import OSParams

    def commits(params, seed):
        farm = make_flat_farm(5, seed=seed, params=params, os_params=OSParams.ideal())
        farm.sim.run(until=40)
        return farm.sim.trace.count("gs.2pc.commit")

    with_beacon = commits(FAST, 8)
    without = commits(FAST.derive(beacon_duration=0.0), 8)
    assert without > with_beacon


def test_discovery_deterministic_given_seed():
    def fingerprint(seed):
        farm = make_flat_farm(5, seed=seed)
        t = run_stable(farm)
        return (t, sorted(str(p.view) for p in states_on_vlan(farm, 2).values()))

    assert fingerprint(11) == fingerprint(11)
    assert fingerprint(11) != fingerprint(12)


def test_post_formation_only_leader_beacons():
    farm = make_flat_farm(4, seed=9)
    run_stable(farm)
    sim = farm.sim
    protos = states_on_vlan(farm, 2)
    members = [p for p in protos.values() if p.state is AdapterState.MEMBER]
    # members' beacon timers are gone
    assert all(p._beacon_timer is None for p in members)
    leaders = [p for p in protos.values() if p.state is AdapterState.LEADER]
    assert all(p._beacon_timer is not None and p._beacon_timer.active for p in leaders)
