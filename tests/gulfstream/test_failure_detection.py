"""Failure detection (§3): crashes, failure modes, verification, takeover."""


from repro.gulfstream.adapter_proto import AdapterState
from repro.net.addressing import IPAddress
from repro.net.loss import LinkQuality
from repro.net.nic import NicState

from tests.conftest import FAST, make_flat_farm, run_stable

# tighter heartbeating for detection tests
HB = FAST.derive(hb_interval=0.5, probe_timeout=0.5, orphan_timeout=3.0,
                 suspect_retry_interval=0.5, takeover_stagger=0.5)


def vlan_protos(farm, vlan):
    return {
        str(p.ip): p
        for d in farm.daemons.values()
        for p in d.protocols.values()
        if p.nic.port is not None and p.nic.port.vlan == vlan
    }


def leader_of(farm, vlan):
    return next(
        p for p in vlan_protos(farm, vlan).values() if p.state is AdapterState.LEADER
    )


def test_crashed_member_removed_and_reported():
    farm = make_flat_farm(5, seed=1, params=HB)
    run_stable(farm)
    victim = farm.hosts["node-2"]
    t0 = farm.sim.now
    victim.crash()
    farm.sim.run(until=t0 + 20)
    # removed from both vlans' views
    for vlan in (1, 2):
        protos = vlan_protos(farm, vlan)
        for p in protos.values():
            if p.host.name != "node-2":
                assert p.view.size == 4
                assert not any(m.node == "node-2" for m in p.view.members)
    # GSC published both adapter failures and the node inference
    assert farm.bus.count("adapter_failed") == 2
    assert farm.bus.count("node_failed") == 1
    assert farm.gsc().node_status("node-2") is False


def test_detection_latency_reasonable():
    farm = make_flat_farm(5, seed=2, params=HB)
    run_stable(farm)
    t0 = farm.sim.now
    farm.hosts["node-1"].crash()
    farm.sim.run(until=t0 + 30)
    fails = [n for n in farm.bus.history if n.kind == "adapter_failed"]
    assert fails
    latency = min(n.time for n in fails) - t0
    # k misses (2 * 0.5s) + probe verification + recommit + report
    assert latency < 10.0


def test_full_fail_single_adapter_does_not_kill_node_status():
    farm = make_flat_farm(5, seed=3, params=HB)
    run_stable(farm)
    ip = next(ip for ip, p in vlan_protos(farm, 2).items() if p.host.name == "node-1")
    t0 = farm.sim.now
    farm.fabric.nics[IPAddress(ip)].fail(NicState.FAIL_FULL)
    farm.sim.run(until=t0 + 20)
    gsc = farm.gsc()
    assert gsc.adapter_status(IPAddress(ip)) is False
    assert gsc.node_status("node-1") is True  # admin adapter still up
    assert farm.bus.count("node_failed") == 0


def test_recv_fail_self_reports_not_blames_neighbors():
    """§3: an adapter that stops receiving fails its loopback test and must
    not cause false failure declarations of its (healthy) neighbours."""
    farm = make_flat_farm(5, seed=4, params=HB)
    run_stable(farm)
    protos = vlan_protos(farm, 2)
    victim = next(p for p in protos.values() if p.state is AdapterState.MEMBER)
    t0 = farm.sim.now
    victim.nic.fail(NicState.FAIL_RECV)
    farm.sim.run(until=t0 + 20)
    assert farm.sim.trace.count("gs.selffault") >= 1
    # the sick adapter was removed...
    leader = leader_of(farm, 2)
    assert not leader.view.contains(victim.ip)
    # ...and no healthy adapter was ever declared failed
    failed = {n.subject for n in farm.bus.history if n.kind == "adapter_failed"}
    assert failed <= {str(victim.ip)}


def test_leader_death_successor_takes_over():
    farm = make_flat_farm(5, seed=5, params=HB)
    run_stable(farm)
    old_leader = leader_of(farm, 2)
    successor_ip = old_leader.view.successor.ip
    old_key = old_leader.view.group_key
    t0 = farm.sim.now
    old_leader.nic.fail(NicState.FAIL_FULL)
    farm.sim.run(until=t0 + 25)
    new_leader = leader_of(farm, 2)
    assert new_leader.ip == successor_ip
    assert new_leader.view.size == 4
    # group identity survives the takeover (GSC continuity)
    assert new_leader.view.group_key == old_key
    assert farm.gsc().adapter_status(old_leader.ip) is False


def test_false_suspicion_is_ignored():
    """Transient loss-induced suspicion must be cleared by leader probe."""
    farm = make_flat_farm(5, seed=6, params=HB.derive(hb_miss_threshold=1, probe_retries=5),
                          quality=LinkQuality(loss_probability=0.08))
    run_stable(farm, timeout=120)
    t0 = farm.sim.now
    farm.sim.run(until=t0 + 60)
    # with p=8% and one-strike suspicion there WILL be suspicions...
    assert farm.sim.trace.count("gs.hb.suspect") > 0
    # ...but probe verification kills them: nobody gets declared dead after
    # the initial discovery settles (formation-time 2PC drops self-heal and
    # are out of scope here)
    post_stability_failures = [
        n for n in farm.bus.history if n.kind == "adapter_failed" and n.time > t0
    ]
    assert post_stability_failures == []
    assert farm.sim.trace.count_prefix("gs.suspect.false") > 0


def test_repaired_adapter_rejoins_and_recovers():
    farm = make_flat_farm(4, seed=7, params=HB)
    run_stable(farm)
    ip = next(ip for ip, p in vlan_protos(farm, 2).items() if p.host.name == "node-0")
    nic = farm.fabric.nics[IPAddress(ip)]
    t0 = farm.sim.now
    nic.fail(NicState.FAIL_FULL)
    farm.sim.run(until=t0 + 15)
    assert farm.gsc().adapter_status(nic.ip) is False
    nic.repair()
    farm.sim.run(until=t0 + 60)
    assert farm.gsc().adapter_status(nic.ip) is True
    assert leader_of(farm, 2).view.contains(nic.ip)
    assert farm.bus.count("adapter_recovered") >= 1


def test_node_crash_and_restart_full_cycle():
    farm = make_flat_farm(5, seed=8, params=HB)
    run_stable(farm)
    t0 = farm.sim.now
    farm.hosts["node-1"].crash()
    farm.sim.run(until=t0 + 20)
    assert farm.gsc().node_status("node-1") is False
    farm.hosts["node-1"].restart()
    farm.sim.run(until=t0 + 70)
    assert farm.gsc().node_status("node-1") is True
    assert farm.bus.count("node_recovered") == 1
    for vlan in (1, 2):
        assert leader_of(farm, vlan).view.size == 5


def test_switch_failure_inferred():
    """§3 correlation: all adapters wired into one switch dead ⇒ switch dead."""
    # put each node's adapters on its own switch so a switch failure maps
    # to a known adapter set
    from repro.farm.builder import FarmBuilder
    from repro.node.osmodel import OSParams

    b = FarmBuilder(seed=9, params=HB, os_params=OSParams.fast()).switches(1)
    for i in range(4):
        b.add_node(f"node-{i}", [1, 2], admin_eligible=(i == 0),
                   )
    farm = b.finish()
    # rewire node-3's adapters onto a dedicated switch
    for nic in farm.hosts["node-3"].adapters:
        vlan = nic.port.vlan
        farm.fabric.detach(nic)
        farm.fabric.attach(nic, "edge-switch", vlan)
    farm.configdb = None  # rebuild DB after rewiring
    from repro.gulfstream.configdb import ConfigDatabase

    db = ConfigDatabase.from_fabric(farm.fabric)
    for d in farm.daemons.values():
        d.configdb = db
    farm.start()
    run_stable(farm)
    t0 = farm.sim.now
    farm.fabric.switches["edge-switch"].fail()
    farm.sim.run(until=t0 + 25)
    assert farm.bus.count("switch_failed") == 1
    assert farm.bus.last("switch_failed").subject == "edge-switch"
    # node-3 is also inferred down (all its adapters are behind the switch)
    assert farm.gsc().node_status("node-3") is False
    farm.fabric.switches["edge-switch"].repair()
    farm.sim.run(until=t0 + 80)
    assert farm.bus.count("switch_recovered") == 1


def test_multiple_simultaneous_failures_converge():
    """The paper's footnote 1 failure case: multiple adapters failing at
    once must still converge to a consistent smaller group."""
    farm = make_flat_farm(7, seed=10, params=HB)
    run_stable(farm)
    t0 = farm.sim.now
    farm.hosts["node-2"].crash()
    farm.hosts["node-4"].crash()
    farm.hosts["node-5"].crash()
    farm.sim.run(until=t0 + 40)
    for vlan in (1, 2):
        protos = {
            ip: p for ip, p in vlan_protos(farm, vlan).items()
            if p.host.name not in ("node-2", "node-4", "node-5")
        }
        views = {str(p.view) for p in protos.values()}
        assert len(views) == 1
        assert next(iter(protos.values())).view.size == 4
    assert farm.bus.count("node_failed") == 3
