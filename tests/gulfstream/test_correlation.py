"""Event correlation unit tests (§3): node/switch inference."""

from repro.gulfstream.correlation import CorrelationEngine
from repro.net.addressing import IPAddress


class Recorder:
    def __init__(self):
        self.events = []

    def __call__(self, kind, subject, **detail):
        self.events.append((kind, subject))

    def kinds(self, k):
        return [s for kind, s in self.events if kind == k]


def engine_with_node(n_adapters=3, node="n0"):
    pub = Recorder()
    eng = CorrelationEngine(pub)
    ips = [IPAddress(f"10.0.0.{i + 1}") for i in range(n_adapters)]
    for ip in ips:
        eng.adapter_event(ip, node, up=True)
    pub.events.clear()
    return eng, pub, ips


def test_node_failed_only_when_all_adapters_down():
    eng, pub, ips = engine_with_node(3)
    eng.adapter_event(ips[0], "n0", up=False)
    eng.adapter_event(ips[1], "n0", up=False)
    assert pub.kinds("node_failed") == []
    eng.adapter_event(ips[2], "n0", up=False)
    assert pub.kinds("node_failed") == ["n0"]
    assert eng.node_status("n0") is False


def test_node_recovers_on_first_adapter_back():
    """'As soon as one of these adapters recovers, we infer that the
    correlated node ... has recovered.'"""
    eng, pub, ips = engine_with_node(2)
    for ip in ips:
        eng.adapter_event(ip, "n0", up=False)
    eng.adapter_event(ips[0], "n0", up=True)
    assert pub.kinds("node_recovered") == ["n0"]
    assert eng.node_status("n0") is True


def test_duplicate_event_does_not_republish():
    eng, pub, ips = engine_with_node(1)
    eng.adapter_event(ips[0], "n0", up=False)
    eng.adapter_event(ips[0], "n0", up=False)
    assert pub.kinds("node_failed") == ["n0"]


def test_switch_failed_when_all_wired_adapters_down():
    pub = Recorder()
    eng = CorrelationEngine(pub)
    ips = [IPAddress(f"10.0.0.{i + 1}") for i in range(2)]
    for ip in ips:
        eng.adapter_switch[ip] = "sw0"
        eng.adapter_event(ip, f"n{int(ip)}", up=True)
    eng.adapter_event(ips[0], "a", up=False)
    assert pub.kinds("switch_failed") == []
    eng.adapter_event(ips[1], "b", up=False)
    assert pub.kinds("switch_failed") == ["sw0"]
    eng.adapter_event(ips[0], "a", up=True)
    assert pub.kinds("switch_recovered") == ["sw0"]


def test_switch_not_inferred_from_partial_knowledge():
    """Never infer equipment failure before every wired adapter has
    reported at least once."""
    pub = Recorder()
    eng = CorrelationEngine(pub)
    a, b = IPAddress("10.0.0.1"), IPAddress("10.0.0.2")
    eng.adapter_switch[a] = eng.adapter_switch[b] = "sw0"
    eng.adapter_event(a, "na", up=False)  # b never reported
    assert pub.kinds("switch_failed") == []
    assert eng.switch_status("sw0") is None or eng.switch_status("sw0") is False


def test_unknown_component_status_is_none():
    eng = CorrelationEngine(Recorder())
    assert eng.node_status("ghost") is None
    assert eng.switch_status("ghost") is None


def test_load_wiring_from_db():
    from repro.gulfstream.configdb import ConfigDatabase, ExpectedAdapter

    db = ConfigDatabase()
    db.add(ExpectedAdapter(IPAddress("10.0.0.1"), "n0", "sw7", 0, 1))
    eng = CorrelationEngine(Recorder())
    eng.load_wiring_from_db(db)
    assert eng.adapter_switch[IPAddress("10.0.0.1")] == "sw7"
    assert eng.adapter_node[IPAddress("10.0.0.1")] == "n0"
