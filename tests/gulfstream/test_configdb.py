"""Configuration database: population, queries, verification logic."""

import pytest

from repro.gulfstream.configdb import ConfigDatabase, ExpectedAdapter
from repro.net.addressing import IPAddress


def row(ip, node="n0", switch="sw0", port=0, vlan=1):
    return ExpectedAdapter(IPAddress(ip), node, switch, port, vlan)


def db_with(*rows):
    db = ConfigDatabase()
    for r in rows:
        db.add(r)
    return db


def test_add_and_lookup():
    db = db_with(row("10.0.0.1"))
    assert db.expected(IPAddress("10.0.0.1")).node == "n0"
    assert db.expected(IPAddress("10.0.0.2")) is None
    assert len(db) == 1


def test_remove():
    db = db_with(row("10.0.0.1"))
    db.remove(IPAddress("10.0.0.1"))
    assert len(db) == 0


def test_set_vlan_updates_row():
    db = db_with(row("10.0.0.1", vlan=1))
    db.set_vlan(IPAddress("10.0.0.1"), 7)
    assert db.expected(IPAddress("10.0.0.1")).vlan == 7
    with pytest.raises(KeyError):
        db.set_vlan(IPAddress("10.0.0.9"), 7)


def test_queries_by_node_and_switch():
    db = db_with(
        row("10.0.0.1", node="a", switch="s1"),
        row("10.0.0.2", node="a", switch="s2", port=1),
        row("10.0.0.3", node="b", switch="s1", port=1),
    )
    assert len(db.adapters_of_node("a")) == 2
    assert len(db.adapters_of_switch("s1")) == 2
    assert db.switches() == {"s1", "s2"}


def test_verify_clean():
    db = db_with(row("10.0.0.1", vlan=1), row("10.0.0.2", vlan=1, port=1))
    issues = db.verify([[IPAddress("10.0.0.1"), IPAddress("10.0.0.2")]])
    assert issues == []


def test_verify_missing():
    db = db_with(row("10.0.0.1"), row("10.0.0.2", port=1))
    issues = db.verify([[IPAddress("10.0.0.1")]])
    assert [i.kind for i in issues] == ["missing"]
    assert issues[0].ip == IPAddress("10.0.0.2")


def test_verify_unknown():
    db = db_with(row("10.0.0.1"))
    issues = db.verify([[IPAddress("10.0.0.1"), IPAddress("10.0.0.9")]])
    assert [i.kind for i in issues] == ["unknown"]


def test_verify_misplaced_minority_vlan():
    """An adapter grouped with a majority expecting a different VLAN is the
    misplaced one — not the majority."""
    db = db_with(
        row("10.0.0.1", vlan=1),
        row("10.0.0.2", vlan=1, port=1),
        row("10.0.0.3", vlan=2, port=2),
    )
    issues = db.verify([[IPAddress("10.0.0.1"), IPAddress("10.0.0.2"), IPAddress("10.0.0.3")],])
    misplaced = [i for i in issues if i.kind == "misplaced"]
    assert len(misplaced) == 1 and misplaced[0].ip == IPAddress("10.0.0.3")
    # and it's also missing from its own vlan group? no: it's accounted for
    assert not any(i.kind == "missing" for i in issues)


def test_verify_uniform_group_not_misplaced():
    """A group whose members all expect the same VLAN is never flagged,
    whatever that VLAN is."""
    db = db_with(row("10.0.0.1", vlan=5), row("10.0.0.2", vlan=5, port=1))
    assert db.verify([[IPAddress("10.0.0.1"), IPAddress("10.0.0.2")]]) == []


def test_reads_writes_counters():
    db = db_with(row("10.0.0.1"))
    assert db.writes == 1
    db.expected(IPAddress("10.0.0.1"))
    db.verify([])
    assert db.reads >= 2


def test_from_fabric_snapshot():
    from repro.net.fabric import Fabric
    from repro.net.nic import NIC
    from repro.sim.engine import Simulator

    fab = Fabric(Simulator())
    fab.attach(NIC(IPAddress("10.0.0.1"), "n0", 0), "sw0", 1)
    fab.attach(NIC(IPAddress("10.0.0.2"), "n1", 0), "sw0", 2)
    db = ConfigDatabase.from_fabric(fab)
    assert len(db) == 2
    assert db.expected(IPAddress("10.0.0.2")).vlan == 2


def test_json_roundtrip():
    db = db_with(
        row("10.0.0.1", node="a", switch="s1", vlan=3),
        row("10.0.0.2", node="b", switch="s2", port=4, vlan=7),
    )
    db2 = ConfigDatabase.from_json(db.to_json())
    assert len(db2) == 2
    r = db2.expected(IPAddress("10.0.0.2"))
    assert (r.node, r.switch, r.port, r.vlan, r.router) == ("b", "s2", 4, 7, None)


def test_json_preserves_router_column():
    db = ConfigDatabase()
    db.add(ExpectedAdapter(IPAddress("10.0.0.9"), "n", "sw", 0, 1, router="core"))
    db2 = ConfigDatabase.from_json(db.to_json())
    assert db2.expected(IPAddress("10.0.0.9")).router == "core"
