"""The gulfstream-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_discover(capsys):
    code, out = run(capsys, "discover", "--nodes", "4", "--beacon", "1.5",
                    "--seed", "1")
    assert code == 0
    assert "stable in" in out
    assert "GulfStream Central" in out
    assert "Adapter Membership Groups" in out


def test_discover_adapters_flag(capsys):
    code, out = run(capsys, "discover", "--nodes", "3", "--adapters", "2",
                    "--beacon", "1.5")
    assert code == 0
    assert "adapters=6" in out


def test_fig5(capsys):
    code, out = run(capsys, "fig5", "--nodes", "2,4", "--beacon-times", "2")
    assert code == 0
    assert "Figure 5" in out
    assert out.count("2.00") >= 1  # the beacon column


def test_storm(capsys):
    code, out = run(capsys, "storm", "--nodes", "5", "--duration", "40",
                    "--mtbf", "30", "--mttr", "5", "--seed", "2")
    assert code == 0
    assert "churn:" in out and "crashes" in out
    assert "node_failed" in out


def test_move(capsys):
    code, out = run(capsys, "move", "--domain-size", "3", "--seed", "3")
    assert code == 0
    assert "moving" in out
    assert "move_completed" in out
    assert "failure notifications: 0" in out


def test_detectors(capsys):
    code, out = run(capsys, "detectors", "--members", "10")
    assert code == 0
    assert "ring (GulfStream)" in out
    assert "all-pairs (HACMP)" in out


def test_serve_crash(capsys):
    code, out = run(capsys, "serve", "--rate", "40", "--event", "crash",
                    "--seed", "4")
    assert code == 0
    assert "success rate=" in out


def test_serve_none_event(capsys):
    code, out = run(capsys, "serve", "--rate", "40", "--event", "none",
                    "--seed", "5")
    assert code == 0
    assert "failed=0" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_parser_prog_name():
    assert build_parser().prog == "gulfstream-sim"
