"""The gulfstream-sim command-line interface."""

from types import SimpleNamespace

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def fake_stability(seen):
    """A stand-in for ``measure_stability`` that records each seed."""

    def fake(nodes, beacon_duration, seed, **kwargs):
        seen.append(seed)
        return SimpleNamespace(n_adapters=3 * nodes, stable_time=float(seed % 97),
                               delta=1.0)

    return fake


def test_discover(capsys):
    code, out = run(capsys, "discover", "--nodes", "4", "--beacon", "1.5",
                    "--seed", "1")
    assert code == 0
    assert "stable in" in out
    assert "GulfStream Central" in out
    assert "Adapter Membership Groups" in out


def test_discover_adapters_flag(capsys):
    code, out = run(capsys, "discover", "--nodes", "3", "--adapters", "2",
                    "--beacon", "1.5")
    assert code == 0
    assert "adapters=6" in out


def test_fig5(capsys):
    code, out = run(capsys, "fig5", "--nodes", "2,4", "--beacon-times", "2")
    assert code == 0
    assert "Figure 5" in out
    assert out.count("2.00") >= 1  # the beacon column


def test_storm(capsys):
    code, out = run(capsys, "storm", "--nodes", "5", "--duration", "40",
                    "--mtbf", "30", "--mttr", "5", "--seed", "2")
    assert code == 0
    assert "churn:" in out and "crashes" in out
    assert "node_failed" in out


def test_move(capsys):
    code, out = run(capsys, "move", "--domain-size", "3", "--seed", "3")
    assert code == 0
    assert "moving" in out
    assert "move_completed" in out
    assert "failure notifications: 0" in out


def test_detectors(capsys):
    code, out = run(capsys, "detectors", "--members", "10")
    assert code == 0
    assert "ring (GulfStream)" in out
    assert "all-pairs (HACMP)" in out


def test_serve_crash(capsys):
    code, out = run(capsys, "serve", "--rate", "40", "--event", "crash",
                    "--seed", "4")
    assert code == 0
    assert "success rate=" in out


def test_serve_none_event(capsys):
    code, out = run(capsys, "serve", "--rate", "40", "--event", "none",
                    "--seed", "5")
    assert code == 0
    assert "failed=0" in out


def test_fig5_replicates_grow_sd_columns(monkeypatch, capsys):
    monkeypatch.setattr("repro.cli.measure_stability", fake_stability([]))
    code, out = run(capsys, "fig5", "--nodes", "2,4", "--beacon-times", "2",
                    "--replicates", "3")
    assert code == 0
    header = out.splitlines()[1]
    assert "stable_s_sd" in header and "delta_s_sd" in header
    assert "replicates" in header
    assert "3" in out  # the replicate count column


def test_fig5_grid_points_get_distinct_seeds(monkeypatch, capsys):
    # the pre-fabric implementation derived seeds as `args.seed + nodes`,
    # which replayed the same seed for every T_beacon row — the fabric
    # hashes the full task identity instead, so all points must differ
    seen = []
    monkeypatch.setattr("repro.cli.measure_stability", fake_stability(seen))
    code, _ = run(capsys, "fig5", "--nodes", "2,4,8", "--beacon-times", "2,5",
                  "--seed", "7")
    assert code == 0
    assert len(seen) == 6
    assert len(set(seen)) == 6


def test_fig5_base_seed_changes_every_task_seed(monkeypatch, capsys):
    first, second = [], []
    monkeypatch.setattr("repro.cli.measure_stability", fake_stability(first))
    run(capsys, "fig5", "--nodes", "2,4", "--beacon-times", "2", "--seed", "0")
    monkeypatch.setattr("repro.cli.measure_stability", fake_stability(second))
    run(capsys, "fig5", "--nodes", "2,4", "--beacon-times", "2", "--seed", "1")
    assert len(first) == len(second) == 2
    assert set(first).isdisjoint(second)


def test_discover_replicates_prints_aggregated_table(monkeypatch, capsys):
    monkeypatch.setattr("repro.cli.measure_stability", fake_stability([]))
    code, out = run(capsys, "discover", "--nodes", "3", "--beacon", "1.5",
                    "--replicates", "2")
    assert code == 0
    assert "independently-seeded" in out
    assert "stable_s_sd" in out


def test_fig5_cache_flag_reuses_results(monkeypatch, capsys, tmp_path):
    monkeypatch.setenv("GULFSTREAM_CACHE_DIR", str(tmp_path))
    seen = []
    monkeypatch.setattr("repro.cli.measure_stability", fake_stability(seen))
    code, cold = run(capsys, "fig5", "--nodes", "2,4", "--beacon-times", "2",
                     "--cache")
    assert code == 0
    assert len(seen) == 2
    assert any(tmp_path.rglob("*.json"))  # results landed on disk
    code, warm = run(capsys, "fig5", "--nodes", "2,4", "--beacon-times", "2",
                     "--cache")
    assert code == 0
    assert len(seen) == 2  # warm run never re-ran the simulation
    assert warm == cold


@pytest.mark.slow
def test_fig5_jobs_matches_serial_through_real_cli(capsys):
    argv = ["fig5", "--nodes", "2", "--beacon-times", "2", "--replicates", "2"]
    code, serial = run(capsys, *argv)
    assert code == 0
    code, parallel = run(capsys, *argv, "--jobs", "2")
    assert code == 0
    assert parallel == serial


def test_workload_smoke(capsys):
    code, out = run(capsys, "workload", "--cases", "1", "--duration", "5",
                    "--rate", "40", "--users", "1000")
    assert code == 0
    assert "workload campaign: cases=1" in out
    assert "moves/hour sustained" in out
    assert "no invariant violations" in out


def test_workload_replicates_fold_into_the_report(capsys):
    code, out = run(capsys, "workload", "--cases", "1", "--replicates", "2",
                    "--duration", "5", "--rate", "40", "--users", "1000")
    assert code == 0
    assert "replicates=2" in out


def test_workload_unknown_mix_exits_2(capsys):
    code, _ = run(capsys, "workload", "--mix", "nosuch")
    assert code == 2


def test_workload_jobs_and_shards_conflict(capsys, monkeypatch):
    monkeypatch.delenv("GULFSTREAM_SHARDS", raising=False)
    code, _ = run(capsys, "workload", "--jobs", "2", "--shards", "2")
    assert code == 2


def test_workload_profile_flag_sets_the_ambient_env(capsys, monkeypatch):
    monkeypatch.delenv("GULFSTREAM_WORKLOAD_PROFILE", raising=False)
    import os

    code, _ = run(capsys, "workload", "--cases", "1", "--duration", "5",
                  "--rate", "40", "--users", "1000", "--profile", "flat")
    assert code == 0
    assert os.environ["GULFSTREAM_WORKLOAD_PROFILE"] == "flat"


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_parser_prog_name():
    assert build_parser().prog == "gulfstream-sim"
