"""Setup shim.

``pip install -e .`` with modern setuptools requires the ``wheel`` package
(PEP 660 editable builds); on fully offline hosts without wheel installed,
``python setup.py develop`` provides an equivalent editable install.
"""
from setuptools import setup

setup()
